(* Tests for hcsgc.serve: the arrival process, the serving loop's
   determinism contract (shard counts, telemetry, verification, fig_serve
   job parallelism, warm-vs-cold store replay), and the SLO analyzer's
   busy-period pause attribution. *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Rng = Hcsgc_util.Rng
module Arrival = Hcsgc_serve.Arrival
module Serve = Hcsgc_serve.Serve
module Slo = Hcsgc_serve.Slo
module Analyzer = Hcsgc_telemetry.Analyzer
module Runner = Hcsgc_experiments.Runner
module Fig_serve = Hcsgc_experiments.Fig_serve

let layout = Layout.scaled ~small_page:(16 * 1024)

(* Small but GC-active: the update churn through a tight heap paces
   several cycles, so the determinism checks cover pause stalls too. *)
let small_params =
  {
    Serve.default with
    Serve.keys = 3_000;
    value_words = 8;
    duration = 4_000_000;
    load = 300.0;
  }

let make_vm ?(shard_domains = 0) ?(config = 18) () =
  Vm.create ~layout
    ~machine_config:Hcsgc_experiments.Scaled_machine.config
    ~config:(Config.of_id config)
    ~max_heap:(2 * 1024 * 1024)
    ~mutators:small_params.Serve.mutators ~shard_domains ~trigger:0.10 ()

let run_small ?shard_domains ?config ?(telemetry = true) ?(verify = false) ()
    =
  let vm = make_vm ?shard_domains ?config () in
  if verify then Vm.enable_verification vm;
  let recorder = if telemetry then Some (Vm.enable_telemetry vm) else None in
  let r = Serve.run vm small_params in
  Vm.finish vm;
  let pauses =
    match recorder with
    | Some rec_ -> Analyzer.pause_intervals rec_
    | None -> []
  in
  (r, pauses, Runner.metrics_to_string (Runner.collect vm))

let signature (r, pauses, metrics) =
  let report =
    Slo.analyze ~slo:(5 * Slo.cycles_per_us)
      ~duration:small_params.Serve.duration ~pauses r
  in
  Slo.to_line report ^ "|"
  ^ Slo.histogram_to_string (Slo.histogram r.Serve.requests)
  ^ "|" ^ string_of_int r.Serve.checksum ^ "|" ^ metrics

(* ------------------------------------------------------------------ *)
(* Arrival process                                                     *)
(* ------------------------------------------------------------------ *)

let drain t =
  let rec go acc = match Arrival.next t with
    | Some a -> go (a :: acc)
    | None -> List.rev acc
  in
  go []

let arrival_constant_rate () =
  let t = Arrival.create Arrival.Constant ~rate:100.0 ~duration:10_000_000 ~seed:1 in
  let arrivals = drain t in
  let n = List.length arrivals in
  (* 100 req/Mc over 10 Mc: expect ~1000 arrivals, Poisson sd ~32. *)
  Alcotest.(check bool) "count near rate * duration" true (n > 850 && n < 1150);
  let sorted = List.sort compare arrivals in
  Alcotest.(check (list int)) "non-decreasing" sorted arrivals;
  List.iter
    (fun a -> Alcotest.(check bool) "within window" true (a >= 0 && a < 10_000_000))
    arrivals

let arrival_deterministic () =
  let gen () =
    drain (Arrival.create (Arrival.Diurnal { trough = 0.25 }) ~rate:50.0
             ~duration:5_000_000 ~seed:7)
  in
  Alcotest.(check (list int)) "same seed, same timeline" (gen ()) (gen ())

let arrival_diurnal_shape () =
  let t = Arrival.create (Arrival.Diurnal { trough = 0.1 }) ~rate:200.0
      ~duration:9_000_000 ~seed:3 in
  let arrivals = drain t in
  let in_range lo hi = List.length (List.filter (fun a -> a >= lo && a < hi) arrivals) in
  let first = in_range 0 3_000_000 in
  let middle = in_range 3_000_000 6_000_000 in
  let last = in_range 6_000_000 9_000_000 in
  (* Sine ramp (trough 0.1): mean rate over the middle third is ~2x the
     mean over either edge third. Require a comfortable 1.5x margin. *)
  Alcotest.(check bool) "middle busier than first third" true
    (middle * 2 > first * 3);
  Alcotest.(check bool) "middle busier than last third" true
    (middle * 2 > last * 3)

let arrival_bursty_shape () =
  let period = 1_000_000 and burst = 100_000 in
  let t = Arrival.create (Arrival.Bursty { period; burst; mult = 10.0 })
      ~rate:50.0 ~duration:10_000_000 ~seed:5 in
  let arrivals = drain t in
  let in_burst = List.length (List.filter (fun a -> a mod period < burst) arrivals) in
  let outside = List.length arrivals - in_burst in
  (* Burst windows are 10% of time at 10x rate: ~half of all arrivals. *)
  Alcotest.(check bool) "bursts concentrate arrivals" true
    (in_burst > outside / 2)

let arrival_parser () =
  let ok s = match Arrival.process_of_string s with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check bool) "constant" true (ok "constant" = Arrival.Constant);
  Alcotest.(check bool) "diurnal with trough" true
    (ok "diurnal:0.5" = Arrival.Diurnal { trough = 0.5 });
  Alcotest.(check bool) "bursty full" true
    (ok "bursty:1000,100,8.0" = Arrival.Bursty { period = 1000; burst = 100; mult = 8.0 });
  List.iter
    (fun s ->
      match Arrival.process_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "poisson"; "diurnal:0"; "diurnal:1.5"; "bursty:0,0,1";
      "bursty:100,200,1"; "bursty:100,10,0" ]

let arrival_validation () =
  List.iter
    (fun f -> Alcotest.check_raises "invalid" (Invalid_argument (f ()))
        (fun () -> ()))
    [];
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Arrival.create Arrival.Constant ~rate:0.0 ~duration:10 ~seed:0);
  expect_invalid (fun () ->
      Arrival.create Arrival.Constant ~rate:1.0 ~duration:0 ~seed:0);
  expect_invalid (fun () ->
      Arrival.create (Arrival.Diurnal { trough = 0.0 }) ~rate:1.0 ~duration:10
        ~seed:0);
  expect_invalid (fun () ->
      Arrival.create (Arrival.Bursty { period = 10; burst = 20; mult = 2.0 })
        ~rate:1.0 ~duration:10 ~seed:0)

(* ------------------------------------------------------------------ *)
(* Serving-loop determinism                                            *)
(* ------------------------------------------------------------------ *)

let serve_shard_determinism () =
  let s1 = signature (run_small ~shard_domains:1 ()) in
  let s2 = signature (run_small ~shard_domains:2 ()) in
  let s4 = signature (run_small ~shard_domains:4 ()) in
  Alcotest.(check string) "shard 2 = shard 1" s1 s2;
  Alcotest.(check string) "shard 4 = shard 1" s1 s4

let serve_telemetry_free () =
  (* Recording is pure observation: the request streams (latencies, wall
     windows, stalls) must be identical with and without a recorder. *)
  let r1, _, m1 = run_small ~telemetry:true () in
  let r2, _, m2 = run_small ~telemetry:false () in
  Alcotest.(check bool) "request arrays equal" true
    (r1.Serve.requests = r2.Serve.requests);
  Alcotest.(check int) "checksum" r1.Serve.checksum r2.Serve.checksum;
  Alcotest.(check string) "metrics" m1 m2

let serve_verified_identical () =
  let s_plain = signature (run_small ()) in
  let s_verified = signature (run_small ~verify:true ()) in
  Alcotest.(check string) "verified = unverified" s_plain s_verified

let serve_repeatable () =
  Alcotest.(check string) "two runs byte-identical"
    (signature (run_small ()))
    (signature (run_small ()))

let serve_exercises_gc () =
  let _, pauses, _ = run_small () in
  Alcotest.(check bool) "GC paused at least once" true (pauses <> [])

let serve_counts_consistent () =
  let r, _, _ = run_small () in
  Alcotest.(check int) "kinds partition requests"
    (Array.length r.Serve.requests)
    (r.Serve.gets + r.Serve.updates + r.Serve.scans);
  Array.iter
    (fun (q : Serve.request) ->
      Alcotest.(check bool) "latency = wait + service + stall" true
        (q.Serve.latency = q.Serve.wait + q.Serve.service + q.Serve.stall);
      Alcotest.(check bool) "window well-formed" true (q.Serve.w1 >= q.Serve.w0))
    r.Serve.requests

let serve_validates_params () =
  let expect_invalid p =
    let vm = make_vm () in
    match Serve.run vm p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { small_params with Serve.keys = 0 };
  expect_invalid
    { small_params with
      Serve.mix = { Serve.gets = 50; updates = 40; scans = 5; scan_len = 8 } }

(* ------------------------------------------------------------------ *)
(* SLO analyzer fixtures                                               *)
(* ------------------------------------------------------------------ *)

let req ?(mutator = 0) ?(kind = Serve.Get) ~arrival ~wait ~service ?(stall = 0)
    ~w0 () =
  {
    Serve.arrival;
    mutator;
    kind;
    wait;
    service;
    stall;
    latency = wait + service + stall;
    w0;
    w1 = w0 + service + stall;
  }

let result_of requests =
  {
    Serve.requests;
    gets = Array.length requests;
    updates = 0;
    scans = 0;
    checksum = 0;
  }

let slo_attribution_direct () =
  (* One request absorbs a pause inside its window and violates; another
     violates on service time alone. *)
  let requests =
    [|
      req ~arrival:0 ~wait:0 ~service:500 ~stall:400 ~w0:100 ();
      req ~arrival:5_000 ~wait:0 ~service:900 ~w0:10_000 ();
      req ~arrival:9_000 ~wait:0 ~service:10 ~w0:20_000 ();
    |]
  in
  let r =
    Slo.analyze ~slo:800 ~duration:100_000
      ~pauses:[ (200, 600) ]
      (result_of requests)
  in
  Alcotest.(check int) "violations" 2 r.Slo.violations;
  Alcotest.(check int) "pause-attributed" 1 r.Slo.pause_attributed;
  Alcotest.(check int) "service-attributed" 1 r.Slo.service_attributed;
  Alcotest.(check int) "pause cycles" 400 r.Slo.pause_cycles

let slo_attribution_carry () =
  (* The pause lands in request A's window; B and C are queued behind it
     (wait > 0) in the same busy period, so their violations are
     pause-attributed even though their own windows overlap nothing.  D
     starts a fresh busy period (wait = 0): its violation is service. *)
  let requests =
    [|
      req ~arrival:0 ~wait:0 ~service:100 ~stall:900 ~w0:0 ();
      req ~arrival:10 ~wait:990 ~service:100 ~w0:2_000 ();
      req ~arrival:20 ~wait:1_080 ~service:50 ~w0:3_000 ();
      req ~arrival:50_000 ~wait:0 ~service:2_000 ~w0:60_000 ();
    |]
  in
  let r =
    Slo.analyze ~slo:700 ~duration:100_000
      ~pauses:[ (100, 1_000) ]
      (result_of requests)
  in
  Alcotest.(check int) "violations" 4 r.Slo.violations;
  Alcotest.(check int) "pause-attributed" 3 r.Slo.pause_attributed;
  Alcotest.(check int) "service-attributed" 1 r.Slo.service_attributed

let slo_carry_resets_per_mutator () =
  (* Carry is per shard: a pause on mutator 0 must not attribute a
     violation on mutator 1's independent queue. *)
  let requests =
    [|
      req ~mutator:0 ~arrival:0 ~wait:0 ~service:100 ~stall:500 ~w0:0 ();
      req ~mutator:1 ~arrival:10 ~wait:600 ~service:300 ~w0:5_000 ();
    |]
  in
  let r =
    Slo.analyze ~slo:400 ~duration:10_000
      ~pauses:[ (50, 550) ]
      (result_of requests)
  in
  Alcotest.(check int) "violations" 2 r.Slo.violations;
  Alcotest.(check int) "pause-attributed" 1 r.Slo.pause_attributed;
  Alcotest.(check int) "service-attributed" 1 r.Slo.service_attributed

let slo_disabled () =
  let requests = [| req ~arrival:0 ~wait:0 ~service:1_000_000 ~w0:0 () |] in
  let r = Slo.analyze ~slo:0 ~duration:10_000 ~pauses:[] (result_of requests) in
  Alcotest.(check int) "no violations when slo = 0" 0 r.Slo.violations;
  Alcotest.(check int) "p50 still reported" 1_000_000 r.Slo.p50

let slo_codec_roundtrip () =
  let requests =
    [|
      req ~arrival:0 ~wait:3 ~service:500 ~stall:7 ~w0:100 ();
      req ~arrival:50 ~wait:0 ~service:900 ~w0:1_000 ();
    |]
  in
  let r =
    Slo.analyze ~slo:800 ~duration:123_456 ~pauses:[ (1, 5) ]
      (result_of requests)
  in
  (match Slo.of_line (Slo.to_line r) with
  | Ok r' -> Alcotest.(check string) "round-trip" (Slo.to_line r) (Slo.to_line r')
  | Error e -> Alcotest.fail e);
  match Slo.of_line "not a report" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error _ -> ()

let slo_histogram_buckets () =
  let requests =
    [|
      req ~arrival:0 ~wait:0 ~service:0 ~w0:0 ();
      req ~arrival:0 ~wait:0 ~service:1 ~w0:0 ();
      req ~arrival:0 ~wait:0 ~service:2 ~w0:0 ();
      req ~arrival:0 ~wait:0 ~service:3 ~w0:0 ();
      req ~arrival:0 ~wait:0 ~service:1_024 ~w0:0 ();
      req ~arrival:0 ~wait:0 ~service:2_047 ~w0:0 ();
    |]
  in
  let h = Slo.histogram requests in
  Alcotest.(check int) "bucket 0 counts 0 and 1" 2 h.(0);
  Alcotest.(check int) "bucket 1 counts 2..3" 2 h.(1);
  Alcotest.(check int) "bucket 10 counts 1024..2047" 2 h.(10);
  Alcotest.(check int) "total preserved" 6 (Array.fold_left ( + ) 0 h)

(* ------------------------------------------------------------------ *)
(* fig_serve: job parallelism and the result store                     *)
(* ------------------------------------------------------------------ *)

let fig_params =
  { small_params with Serve.keys = 2_000; duration = 2_000_000 }

let outcomes_signature results =
  String.concat "\n---\n"
    (List.concat_map
       (fun (id, os) ->
         Array.to_list
           (Array.map
              (fun o -> string_of_int id ^ ":" ^ Fig_serve.outcome_to_string o)
              os))
       results)

let fig_serve_jobs_determinism () =
  let sweep jobs =
    Fig_serve.sweep ~config_ids:[ 0; 18 ] ~runs:2 ~jobs ~params:fig_params ()
  in
  Alcotest.(check string) "-j4 = -j1"
    (outcomes_signature (sweep 1))
    (outcomes_signature (sweep 4))

let with_temp_dir f =
  let dir = Filename.temp_file "hcsgc_serve_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let fig_serve_warm_replay () =
  with_temp_dir (fun dir ->
      let sweep () =
        let cache = Runner.cache ~dir () in
        let r =
          Fig_serve.sweep ~config_ids:[ 0; 18 ] ~runs:1 ~cache
            ~params:fig_params ()
        in
        (outcomes_signature r, Hcsgc_store.Result_store.counters cache.Runner.store)
      in
      let cold, cold_counters = sweep () in
      let warm, warm_counters = sweep () in
      Alcotest.(check string) "warm replay byte-identical" cold warm;
      Alcotest.(check int) "cold stored every job" 2
        cold_counters.Hcsgc_store.Result_store.stored;
      Alcotest.(check int) "warm all hits" 2
        warm_counters.Hcsgc_store.Result_store.hits;
      Alcotest.(check int) "warm no misses" 0
        warm_counters.Hcsgc_store.Result_store.misses)

let fig_serve_verify_distinct_entries () =
  (* Verified results are byte-identical, but cached under distinct
     fingerprints — like Runner jobs. *)
  with_temp_dir (fun dir ->
      let cache = Runner.cache ~dir () in
      let run verify =
        outcomes_signature
          (Fig_serve.sweep ~config_ids:[ 18 ] ~runs:1 ~verify ~cache
             ~params:fig_params ())
      in
      let plain = run false in
      let verified = run true in
      Alcotest.(check string) "verified = plain output" plain verified;
      Alcotest.(check int) "two distinct store entries" 2
        (Hcsgc_store.Result_store.counters cache.Runner.store)
          .Hcsgc_store.Result_store.stored)

let fig_serve_outcome_codec () =
  let results =
    Fig_serve.sweep ~config_ids:[ 0 ] ~runs:1 ~params:fig_params ()
  in
  let o = (snd (List.hd results)).(0) in
  match Fig_serve.outcome_of_string (Fig_serve.outcome_to_string o) with
  | None -> Alcotest.fail "codec failed to round-trip"
  | Some o' ->
      Alcotest.(check string) "payload round-trips"
        (Fig_serve.outcome_to_string o)
        (Fig_serve.outcome_to_string o');
      Alcotest.(check bool) "garbage rejected" true
        (Fig_serve.outcome_of_string "hcsgc-serve-metrics 1\ngarbage" = None)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "arrival: constant rate" `Quick arrival_constant_rate;
        Alcotest.test_case "arrival: deterministic" `Quick arrival_deterministic;
        Alcotest.test_case "arrival: diurnal shape" `Quick arrival_diurnal_shape;
        Alcotest.test_case "arrival: bursty shape" `Quick arrival_bursty_shape;
        Alcotest.test_case "arrival: parser" `Quick arrival_parser;
        Alcotest.test_case "arrival: validation" `Quick arrival_validation;
        Alcotest.test_case "determinism across shard counts" `Quick
          serve_shard_determinism;
        Alcotest.test_case "telemetry charges nothing" `Quick
          serve_telemetry_free;
        Alcotest.test_case "verified run identical" `Quick
          serve_verified_identical;
        Alcotest.test_case "repeatable" `Quick serve_repeatable;
        Alcotest.test_case "exercises GC" `Quick serve_exercises_gc;
        Alcotest.test_case "request invariants" `Quick serve_counts_consistent;
        Alcotest.test_case "parameter validation" `Quick serve_validates_params;
        Alcotest.test_case "slo: direct attribution" `Quick
          slo_attribution_direct;
        Alcotest.test_case "slo: busy-period carry" `Quick slo_attribution_carry;
        Alcotest.test_case "slo: carry is per mutator" `Quick
          slo_carry_resets_per_mutator;
        Alcotest.test_case "slo: disabled threshold" `Quick slo_disabled;
        Alcotest.test_case "slo: report codec" `Quick slo_codec_roundtrip;
        Alcotest.test_case "slo: histogram buckets" `Quick slo_histogram_buckets;
        Alcotest.test_case "fig_serve: -j determinism" `Quick
          fig_serve_jobs_determinism;
        Alcotest.test_case "fig_serve: warm replay" `Quick fig_serve_warm_replay;
        Alcotest.test_case "fig_serve: verify keys distinct" `Quick
          fig_serve_verify_distinct_entries;
        Alcotest.test_case "fig_serve: outcome codec" `Quick
          fig_serve_outcome_codec;
      ] );
  ]
