(* Tests for hcsgc.core: configuration validation (Table 2), GC statistics,
   and collector behaviour through the VM (cycle structure, marking,
   relocation, hotness, EC selection, the tuning knobs). *)

module Config = Hcsgc_core.Config
module Gc_stats = Hcsgc_core.Gc_stats
module Collector = Hcsgc_core.Collector
module Vm = Hcsgc_runtime.Vm
module Layout = Hcsgc_heap.Layout
module Heap = Hcsgc_heap.Heap
module Page = Hcsgc_heap.Page
module Heap_obj = Hcsgc_heap.Heap_obj

let check = Alcotest.check
let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let config_table2_complete () =
  check Alcotest.int "19 configurations" 19 (List.length Config.table2);
  check Alcotest.int "id_count" 19 Config.id_count;
  List.iter
    (fun (id, c) ->
      match Config.validate c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "config %d invalid: %s" id e)
    Config.table2

let config_table2_spot_checks () =
  (* Row/column checks against the paper's Table 2. *)
  let c5 = Config.of_id 5 in
  check Alcotest.bool "5: hotness only" true
    (c5.Config.hotness && (not c5.Config.coldpage)
    && c5.Config.cold_confidence = 0.0
    && (not c5.Config.relocate_all_small_pages)
    && not c5.Config.lazy_relocate);
  let c16 = Config.of_id 16 in
  check Alcotest.bool "16: hot+cp+cc1+lazy" true
    (c16.Config.hotness && c16.Config.coldpage
    && c16.Config.cold_confidence = 1.0
    && c16.Config.lazy_relocate
    && not c16.Config.relocate_all_small_pages);
  let c18 = Config.of_id 18 in
  check Alcotest.bool "18: hot+cp+ra+lazy" true
    (c18.Config.hotness && c18.Config.coldpage
    && c18.Config.relocate_all_small_pages && c18.Config.lazy_relocate);
  check Alcotest.bool "0 and 1 both ZGC" true
    (Config.equal (Config.of_id 0) Config.zgc
    && Config.equal (Config.of_id 1) Config.zgc)

let config_validation () =
  check Alcotest.bool "coldpage without hotness rejected" true
    (Result.is_error
       (Config.validate
          { Config.zgc with Config.coldpage = true }));
  check Alcotest.bool "cc without hotness rejected" true
    (Result.is_error
       (Config.validate { Config.zgc with Config.cold_confidence = 0.5 }));
  check Alcotest.bool "cc out of range rejected" true
    (Result.is_error
       (Config.validate
          { Config.zgc with Config.hotness = true; cold_confidence = 1.5 }));
  Alcotest.check_raises "make raises"
    (Invalid_argument "Config: COLDPAGE requires HOTNESS to be enabled")
    (fun () -> ignore (Config.make ~coldpage:true ()))

let config_of_id_bounds () =
  Alcotest.check_raises "id 19" (Invalid_argument "Config.of_id: id must be in 0-18")
    (fun () -> ignore (Config.of_id 19))

let config_to_string () =
  check Alcotest.string "zgc" "zgc" (Config.to_string Config.zgc);
  check Alcotest.string "cfg 16" "hot+cp+cc1.0+lazy"
    (Config.to_string (Config.of_id 16))

(* ------------------------------------------------------------------ *)
(* Gc_stats                                                            *)
(* ------------------------------------------------------------------ *)

let stats_cycles_and_median () =
  let st = Gc_stats.create () in
  check Alcotest.int "first cycle is 1" 1 (Gc_stats.on_cycle_start st ~wall:0);
  Gc_stats.on_ec_selected st ~small:7 ~medium:1;
  ignore (Gc_stats.on_cycle_start st ~wall:100);
  Gc_stats.on_ec_selected st ~small:3 ~medium:0;
  ignore (Gc_stats.on_cycle_start st ~wall:200);
  Gc_stats.on_ec_selected st ~small:5 ~medium:0;
  check Alcotest.int "cycles" 3 (Gc_stats.cycles st);
  check (Alcotest.float 1e-9) "median of [7;3;5]" 5.0
    (Gc_stats.median_small_pages_in_ec st)

let stats_median_even () =
  let st = Gc_stats.create () in
  List.iter
    (fun n ->
      ignore (Gc_stats.on_cycle_start st ~wall:0);
      Gc_stats.on_ec_selected st ~small:n ~medium:0)
    [ 2; 8; 4; 6 ];
  check (Alcotest.float 1e-9) "median of [2;8;4;6]" 5.0
    (Gc_stats.median_small_pages_in_ec st)

let stats_relocation_attribution () =
  let st = Gc_stats.create () in
  Gc_stats.on_relocate st ~by_mutator:true ~bytes:32;
  Gc_stats.on_relocate st ~by_mutator:false ~bytes:64;
  Gc_stats.on_relocate st ~by_mutator:false ~bytes:64;
  check Alcotest.int "mutator" 1 (Gc_stats.objects_relocated_by_mutator st);
  check Alcotest.int "gc" 2 (Gc_stats.objects_relocated_by_gc st);
  check Alcotest.int "bytes" 160 (Gc_stats.bytes_relocated st)

let stats_ec_requires_cycle () =
  let st = Gc_stats.create () in
  Alcotest.check_raises "no cycle"
    (Invalid_argument "Gc_stats.on_ec_selected: no cycle in progress")
    (fun () -> Gc_stats.on_ec_selected st ~small:1 ~medium:0)

(* ------------------------------------------------------------------ *)
(* Collector behaviour (driven through a small VM)                     *)
(* ------------------------------------------------------------------ *)

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(max_heap = 4 * 1024 * 1024) () =
  Vm.create ~layout ~config ~max_heap ()

(* Allocate enough garbage to push the collector through [n] full cycles. *)
let churn_cycles vm n =
  let target = Gc_stats.cycles (Vm.gc_stats vm) + n in
  while Gc_stats.cycles (Vm.gc_stats vm) < target do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:16)
  done;
  Vm.finish vm

let collector_runs_cycles () =
  let vm = mk_vm () in
  churn_cycles vm 3;
  let st = Vm.gc_stats vm in
  check Alcotest.bool "cycles ran" true (Gc_stats.cycles st >= 3);
  check Alcotest.bool "pages were freed" true (Gc_stats.pages_freed st > 0);
  check Alcotest.bool "three pauses per cycle" true
    (Gc_stats.stw_pauses st >= 3 * Gc_stats.cycles st)

let rooted_objects_survive () =
  let vm = mk_vm () in
  let keeper = Vm.alloc vm ~nrefs:4 ~nwords:0 in
  Vm.add_root vm keeper;
  let vals = [ 11; 22; 33; 44 ] in
  List.iteri
    (fun i v ->
      let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
      Vm.store_word vm o 0 v;
      Vm.store_ref vm keeper i (Some o))
    vals;
  churn_cycles vm 4;
  List.iteri
    (fun i v ->
      match Vm.load_ref vm keeper i with
      | Some o -> check Alcotest.int "value survives" v (Vm.load_word vm o 0)
      | None -> Alcotest.fail "lost a rooted object")
    vals

let object_graph_integrity_after_gc () =
  (* A linked list must stay intact across cycles and relocations. *)
  let vm = mk_vm ~config:(Config.of_id 18) () in
  let head = Vm.alloc vm ~nrefs:1 ~nwords:1 in
  Vm.add_root vm head;
  Vm.store_word vm head 0 0;
  let n = 500 in
  let tail = ref head in
  for i = 1 to n do
    let node = Vm.alloc vm ~nrefs:1 ~nwords:1 in
    Vm.store_word vm node 0 i;
    Vm.store_ref vm !tail 0 (Some node);
    tail := node
  done;
  churn_cycles vm 5;
  (* Walk and verify. *)
  let rec walk node expect =
    check Alcotest.int "list payload" expect (Vm.load_word vm node 0);
    match Vm.load_ref vm node 0 with
    | Some next -> walk next (expect + 1)
    | None -> check Alcotest.int "list length" n expect
  in
  walk head 0

let relocation_happens_and_handles_survive () =
  let vm = mk_vm ~config:(Config.of_id 3) () in
  (* relocate-all *)
  let keeper = Vm.alloc vm ~nrefs:64 ~nwords:0 in
  Vm.add_root vm keeper;
  let objs =
    Array.init 64 (fun i ->
        let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
        Vm.store_word vm o 0 i;
        Vm.store_ref vm keeper i (Some o);
        o)
  in
  churn_cycles vm 4;
  (* Touch everything so pending relocations resolve. *)
  Array.iteri (fun i o -> check Alcotest.int "payload" i (Vm.load_word vm o 0)) objs;
  let moved = Array.exists (fun o -> o.Heap_obj.relocations > 0) objs in
  check Alcotest.bool "some objects relocated" true moved;
  check Alcotest.bool "stats recorded relocations" true
    (Gc_stats.objects_relocated_by_gc (Vm.gc_stats vm)
     + Gc_stats.objects_relocated_by_mutator (Vm.gc_stats vm)
    > 0)

let baseline_zgc_skips_dense_pages () =
  (* Under plain ZGC, fully-live pages must not be evacuated. *)
  let vm = mk_vm ~config:Config.zgc () in
  let n = 512 in
  let keeper = Vm.alloc vm ~nrefs:n ~nwords:0 in
  Vm.add_root vm keeper;
  let objs =
    Array.init n (fun i ->
        let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
        Vm.store_ref vm keeper i (Some o);
        o)
  in
  churn_cycles vm 4;
  let moved =
    Array.fold_left (fun acc o -> acc + o.Heap_obj.relocations) 0 objs
  in
  check Alcotest.int "no live-dense page evacuated" 0 moved

let lazy_relocate_defers_to_mutator () =
  (* With LAZYRELOCATE, objects accessed between cycles are relocated by the
     mutator (access order), visible in the attribution stats. *)
  let vm = mk_vm ~config:(Config.of_id 4) () in
  let n = 512 in
  let keeper = Vm.alloc vm ~nrefs:n ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to n - 1 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_ref vm keeper i (Some o)
  done;
  for _round = 1 to 6 do
    (* Touch all objects, then churn a cycle. *)
    for i = 0 to n - 1 do
      match Vm.load_ref vm keeper i with
      | Some o -> ignore (Vm.load_word vm o 0)
      | None -> Alcotest.fail "lost object"
    done;
    churn_cycles vm 1
  done;
  (* Drain pending relocation for stable stats. *)
  for i = 0 to n - 1 do
    ignore (Vm.load_ref vm keeper i)
  done;
  let st = Vm.gc_stats vm in
  check Alcotest.bool "mutator performed relocations" true
    (Gc_stats.objects_relocated_by_mutator st > 0)

let hotness_flags_accessed_objects () =
  let vm = mk_vm ~config:(Config.of_id 5) () in
  let keeper = Vm.alloc vm ~nrefs:8 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 7 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
    Vm.store_ref vm keeper i (Some o)
  done;
  churn_cycles vm 2;
  for _ = 1 to 3 do
    for i = 0 to 7 do
      ignore (Vm.load_ref vm keeper i)
    done;
    churn_cycles vm 1
  done;
  check Alcotest.bool "hot flags recorded" true
    (Gc_stats.hot_flags (Vm.gc_stats vm) > 0)

let zgc_records_no_hotness () =
  let vm = mk_vm ~config:Config.zgc () in
  let keeper = Vm.alloc vm ~nrefs:8 ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to 7 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:1 in
    Vm.store_ref vm keeper i (Some o)
  done;
  for _ = 1 to 3 do
    for i = 0 to 7 do
      ignore (Vm.load_ref vm keeper i)
    done;
    churn_cycles vm 1
  done;
  check Alcotest.int "no hot flags with HOTNESS off" 0
    (Gc_stats.hot_flags (Vm.gc_stats vm))

let good_color_alternates () =
  let vm = mk_vm () in
  let col = Vm.collector vm in
  let seen = ref [] in
  for _ = 1 to 4 do
    churn_cycles vm 1;
    seen := Collector.good_color col :: !seen
  done;
  (* After each completed cycle the good colour is R (the relocation window
     colour persists between cycles). *)
  List.iter
    (fun c ->
      check Alcotest.bool "good colour is R between cycles" true
        (c = Hcsgc_heap.Addr.R))
    !seen

let large_objects_never_relocate () =
  let vm = mk_vm () in
  (* Bigger than medium_obj_max -> large page. *)
  let words = (layout.Layout.medium_obj_max / 8) + 8 in
  let big = Vm.alloc vm ~nrefs:0 ~nwords:words in
  Vm.add_root vm big;
  Vm.store_word vm big 0 99;
  churn_cycles vm 3;
  check Alcotest.int "large object in place" 0 big.Heap_obj.relocations;
  check Alcotest.int "payload intact" 99 (Vm.load_word vm big 0)

let out_of_memory_raised () =
  let vm = mk_vm ~max_heap:(256 * 1024) () in
  let keeper = Vm.alloc vm ~nrefs:4096 ~nwords:0 in
  Vm.add_root vm keeper;
  Alcotest.check_raises "OOM" Collector.Out_of_memory (fun () ->
      (* Keep everything live: the heap must eventually overflow. *)
      for i = 0 to 4095 do
        let o = Vm.alloc vm ~nrefs:0 ~nwords:30 in
        Vm.store_ref vm keeper i (Some o)
      done)

let cold_page_segregation () =
  (* With COLDPAGE on and a clear hot/cold split, pages coming out of GC
     relocation are strongly segregated. *)
  let vm = mk_vm ~config:(Config.of_id 17) () in
  (* hot+cp+ra *)
  let n = 1024 in
  let keeper = Vm.alloc vm ~nrefs:n ~nwords:0 in
  Vm.add_root vm keeper;
  for i = 0 to n - 1 do
    let o = Vm.alloc vm ~nrefs:0 ~nwords:2 in
    Vm.store_word vm o 0 i;
    Vm.store_ref vm keeper i (Some o)
  done;
  (* Touch only the first quarter, repeatedly, across several cycles. *)
  for _round = 1 to 6 do
    for i = 0 to (n / 4) - 1 do
      ignore (Vm.load_ref vm keeper i)
    done;
    churn_cycles vm 1
  done;
  (* Count pages whose population is mixed hot/cold by our ground truth
     (id < n/4 = hot). *)
  let heap = Vm.heap vm in
  let page_of o = Option.get (Heap.page_of_addr heap o.Heap_obj.addr) in
  let tbl = Hashtbl.create 32 in
  for i = 0 to n - 1 do
    match Vm.load_ref vm keeper i with
    | Some o ->
        let p = (page_of o).Page.id in
        let hot, cold = Option.value (Hashtbl.find_opt tbl p) ~default:(0, 0) in
        if i < n / 4 then Hashtbl.replace tbl p (hot + 1, cold)
        else Hashtbl.replace tbl p (hot, cold + 1)
    | None -> Alcotest.fail "lost object"
  done;
  let mixed = ref 0 and pure = ref 0 in
  Hashtbl.iter
    (fun _ (h, c) -> if h > 0 && c > 0 then incr mixed else incr pure)
    tbl;
  check Alcotest.bool "segregation dominates" true (!pure >= !mixed)

let suite =
  [
    ( "core.config",
      [
        case "Table 2 complete & valid" `Quick config_table2_complete;
        case "Table 2 spot checks" `Quick config_table2_spot_checks;
        case "validation rules" `Quick config_validation;
        case "of_id bounds" `Quick config_of_id_bounds;
        case "to_string" `Quick config_to_string;
      ] );
    ( "core.gc_stats",
      [
        case "cycles & EC median" `Quick stats_cycles_and_median;
        case "median (even count)" `Quick stats_median_even;
        case "relocation attribution" `Quick stats_relocation_attribution;
        case "EC requires cycle" `Quick stats_ec_requires_cycle;
      ] );
    ( "core.collector",
      [
        case "cycles run and free memory" `Quick collector_runs_cycles;
        case "rooted objects survive" `Quick rooted_objects_survive;
        case "object graph integrity (cfg 18)" `Quick
          object_graph_integrity_after_gc;
        case "relocation happens (relocate-all)" `Quick
          relocation_happens_and_handles_survive;
        case "ZGC skips dense pages" `Quick baseline_zgc_skips_dense_pages;
        case "lazy relocate engages mutator" `Quick
          lazy_relocate_defers_to_mutator;
        case "hotness flags accesses" `Quick hotness_flags_accessed_objects;
        case "no hotness under ZGC" `Quick zgc_records_no_hotness;
        case "good colour is R between cycles" `Quick good_color_alternates;
        case "large objects never relocate" `Quick large_objects_never_relocate;
        case "out of memory" `Quick out_of_memory_raised;
        case "cold page segregation (cfg 17)" `Quick cold_page_segregation;
      ] );
  ]
