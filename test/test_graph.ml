(* Tests for hcsgc.graph: managed graphs, generators, datasets, and the
   CC / biconnectivity / Bron-Kerbosch algorithms (validated against known
   small graphs and an OCaml-side reference implementation). *)

module Vm = Hcsgc_runtime.Vm
module Config = Hcsgc_core.Config
module Layout = Hcsgc_heap.Layout
module Rng = Hcsgc_util.Rng
module Mgraph = Hcsgc_graph.Mgraph
module Generator = Hcsgc_graph.Generator
module Dataset = Hcsgc_graph.Dataset
module Connectivity = Hcsgc_graph.Connectivity
module Bron_kerbosch = Hcsgc_graph.Bron_kerbosch

let check = Alcotest.check
let case = Alcotest.test_case

let layout = Layout.scaled ~small_page:(16 * 1024)

let mk_vm ?(config = Config.zgc) ?(max_heap = 16 * 1024 * 1024) () =
  Vm.create ~layout ~config ~max_heap ()

let graph_of_edges vm n edges =
  let g = Mgraph.create vm ~n in
  List.iter (fun (a, b) -> Mgraph.add_edge g a b) edges;
  g

(* ------------------------------------------------------------------ *)
(* Mgraph                                                              *)
(* ------------------------------------------------------------------ *)

let mgraph_basic () =
  let vm = mk_vm () in
  let g = graph_of_edges vm 4 [ (0, 1); (1, 2); (0, 3) ] in
  check Alcotest.int "n" 4 (Mgraph.n g);
  check Alcotest.int "arcs (undirected x2)" 6 (Mgraph.edge_count g);
  check (Alcotest.list Alcotest.int) "neighbors of 0 (sorted)" [ 1; 3 ]
    (List.sort compare (Mgraph.neighbors g 0));
  check Alcotest.int "degree of 1" 2 (Mgraph.degree g 1);
  check Alcotest.int "degree of 2" 1 (Mgraph.degree g 2)

let mgraph_node_identity () =
  let vm = mk_vm () in
  let g = Mgraph.create vm ~n:5 in
  for i = 0 to 4 do
    check Alcotest.int "node id readable" i (Mgraph.node_id g (Mgraph.node g i))
  done;
  Alcotest.check_raises "bad vertex"
    (Invalid_argument "Mgraph.node: vertex out of range") (fun () ->
      ignore (Mgraph.node g 5))

let mgraph_many_neighbors () =
  (* Adjacency chains spanning several cells. *)
  let vm = mk_vm () in
  let g = Mgraph.create vm ~n:40 in
  for i = 1 to 39 do
    Mgraph.add_arc g 0 i
  done;
  check Alcotest.int "degree across cells" 39 (Mgraph.degree g 0);
  check (Alcotest.list Alcotest.int) "all neighbours present"
    (List.init 39 (fun i -> i + 1))
    (List.sort compare (Mgraph.neighbors g 0))

let mgraph_survives_gc () =
  let vm = mk_vm ~config:(Config.of_id 18) () in
  let g = graph_of_edges vm 30 (List.init 29 (fun i -> (i, i + 1))) in
  (* Churn garbage through several cycles, then verify the structure. *)
  for _ = 1 to 60_000 do
    ignore (Vm.alloc vm ~nrefs:0 ~nwords:8)
  done;
  Vm.finish vm;
  for i = 0 to 28 do
    check Alcotest.bool "chain edge intact" true
      (List.mem (i + 1) (Mgraph.neighbors g i))
  done

(* ------------------------------------------------------------------ *)
(* Generator & datasets                                                *)
(* ------------------------------------------------------------------ *)

let generator_counts () =
  let rng = Rng.create 5 in
  let es = Generator.edges ~rng ~model:Generator.Preferential ~nodes:100 ~edges:500 in
  check Alcotest.int "edge count" 500 (Array.length es);
  Array.iter
    (fun (a, b) ->
      check Alcotest.bool "endpoints in range" true
        (a >= 0 && a < 100 && b >= 0 && b < 100))
    es

let generator_deterministic () =
  let gen () =
    Generator.edges ~rng:(Rng.create 9) ~model:Generator.Preferential
      ~nodes:50 ~edges:200
  in
  check Alcotest.bool "same seed, same edges" true (gen () = gen ())

let generator_power_law_skew () =
  (* Preferential attachment should concentrate degree far more than the
     uniform model. *)
  let degrees model =
    let rng = Rng.create 3 in
    let es = Generator.edges ~rng ~model ~nodes:300 ~edges:3000 in
    let d = Array.make 300 0 in
    Array.iter
      (fun (a, b) ->
        d.(a) <- d.(a) + 1;
        d.(b) <- d.(b) + 1)
      es;
    Array.sort compare d;
    (* mass held by the top 10% *)
    let top = Array.sub d 270 30 in
    Array.fold_left ( + ) 0 top
  in
  check Alcotest.bool "preferential skews harder" true
    (degrees Generator.Preferential > degrees Generator.Uniform)

let generator_build () =
  let vm = mk_vm () in
  let rng = Rng.create 7 in
  let g =
    Generator.build vm ~rng ~model:Generator.Uniform ~nodes:50 ~edges:100
  in
  check Alcotest.int "nodes" 50 (Mgraph.n g);
  check Alcotest.bool "arcs inserted (minus self-loops)" true
    (Mgraph.edge_count g > 0 && Mgraph.edge_count g <= 200)

let web_model_has_communities () =
  (* Triangle density: the Web model must have far more triangles than the
     uniform model at equal size — that's what gives BK its cliques and CC
     its temporal locality. *)
  let triangles model =
    let rng = Rng.create 17 in
    let n = 200 in
    let es = Generator.edges ~rng ~model ~nodes:n ~edges:800 in
    let adj = Array.make_matrix n n false in
    Array.iter
      (fun (a, b) ->
        if a <> b then begin
          adj.(a).(b) <- true;
          adj.(b).(a) <- true
        end)
      es;
    let count = ref 0 in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if adj.(a).(b) then
          for c = b + 1 to n - 1 do
            if adj.(a).(c) && adj.(b).(c) then incr count
          done
      done
    done;
    !count
  in
  let web = triangles Generator.Web and uniform = triangles Generator.Uniform in
  check Alcotest.bool
    (Printf.sprintf "web %d >> uniform %d triangles" web uniform)
    true
    (web > 2 * uniform)

let web_model_finds_big_cliques () =
  let vm = mk_vm () in
  let rng = Rng.create 23 in
  let g = Generator.build vm ~rng ~model:Generator.Web ~nodes:300 ~edges:6_000 in
  let r = Bron_kerbosch.run ~max_expansions:3_000 g in
  check Alcotest.bool
    (Printf.sprintf "max clique %d >= 6" r.Bron_kerbosch.max_size)
    true
    (r.Bron_kerbosch.max_size >= 6)

let dataset_table3 () =
  check Alcotest.int "six rows" 6 (List.length Dataset.table3);
  check Alcotest.int "uk CC nodes" 28_128 Dataset.uk_cc.Dataset.nodes;
  check Alcotest.int "uk CC edges" 900_002 Dataset.uk_cc.Dataset.edges;
  check Alcotest.int "enwiki MC nodes" 43_354 Dataset.enwiki_mc.Dataset.nodes;
  check Alcotest.int "enwiki complete edges" 128_835_798
    Dataset.enwiki_complete.Dataset.edges;
  check Alcotest.int "uk MC heap" 4_096 Dataset.uk_mc.Dataset.heap_mb

let dataset_scaling () =
  let s = Dataset.scaled Dataset.uk_cc ~factor:4 in
  check Alcotest.int "nodes scaled" (28_128 / 4) s.Dataset.nodes;
  check Alcotest.int "edges scaled" (900_002 / 4) s.Dataset.edges;
  Alcotest.check_raises "factor 0"
    (Invalid_argument "Dataset.scaled: factor must be >= 1") (fun () ->
      ignore (Dataset.scaled Dataset.uk_cc ~factor:0))

(* ------------------------------------------------------------------ *)
(* Connectivity                                                        *)
(* ------------------------------------------------------------------ *)

let cc_known_graph () =
  let vm = mk_vm () in
  (* Two components: a triangle and an edge; plus an isolated vertex. *)
  let g = graph_of_edges vm 6 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  let components, largest = Connectivity.connected_components g in
  check Alcotest.int "components" 3 components;
  check Alcotest.int "largest" 3 largest

let cc_single_component () =
  let vm = mk_vm () in
  let g = graph_of_edges vm 10 (List.init 9 (fun i -> (i, i + 1))) in
  let components, largest = Connectivity.connected_components g in
  check Alcotest.int "one component" 1 components;
  check Alcotest.int "spans all" 10 largest

let articulation_points_known () =
  let vm = mk_vm () in
  (* Path 0-1-2: vertex 1 is a cut point.  Triangle 3-4-5 has none. *)
  let g = graph_of_edges vm 6 [ (0, 1); (1, 2); (3, 4); (4, 5); (5, 3) ] in
  let r = Connectivity.analyse ~passes:1 g in
  check Alcotest.int "one articulation point" 1 r.Connectivity.cut_points;
  check Alcotest.int "two components" 2 r.Connectivity.components

let articulation_bridge_chain () =
  let vm = mk_vm () in
  (* A chain of 5: the 3 interior vertices are cut points. *)
  let g = graph_of_edges vm 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let r = Connectivity.analyse ~passes:1 g in
  check Alcotest.int "interior cut points" 3 r.Connectivity.cut_points

let prop_cc_matches_reference =
  QCheck.Test.make ~name:"connectivity: matches union-find reference" ~count:25
    QCheck.(pair (int_range 2 30) (small_list (pair (int_bound 29) (int_bound 29))))
    (fun (n, raw_edges) ->
      let edges =
        List.filter_map
          (fun (a, b) ->
            let a = a mod n and b = b mod n in
            if a <> b then Some (a, b) else None)
          raw_edges
      in
      (* Reference: union-find. *)
      let parent = Array.init n (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      List.iter (fun (a, b) -> parent.(find a) <- find b) edges;
      let expected =
        List.length
          (List.sort_uniq compare (List.init n find))
      in
      let vm = mk_vm () in
      let g = graph_of_edges vm n edges in
      let got, _ = Connectivity.connected_components g in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Bron-Kerbosch                                                       *)
(* ------------------------------------------------------------------ *)

let bk_triangle () =
  let vm = mk_vm () in
  let g = graph_of_edges vm 3 [ (0, 1); (1, 2); (2, 0) ] in
  let r = Bron_kerbosch.run g in
  check Alcotest.int "one maximal clique" 1 r.Bron_kerbosch.cliques;
  check Alcotest.int "of size 3" 3 r.Bron_kerbosch.max_size

let bk_two_triangles_sharing_edge () =
  (* K4 minus an edge: cliques {0,1,2} and {1,2,3}. *)
  let vm = mk_vm () in
  let g = graph_of_edges vm 4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ] in
  let r = Bron_kerbosch.run g in
  check Alcotest.int "two maximal cliques" 2 r.Bron_kerbosch.cliques;
  check Alcotest.int "max size 3" 3 r.Bron_kerbosch.max_size

let bk_independent_set () =
  let vm = mk_vm () in
  let g = Mgraph.create vm ~n:4 in
  let r = Bron_kerbosch.run g in
  (* Each isolated vertex is a maximal clique of size 1. *)
  check Alcotest.int "four singletons" 4 r.Bron_kerbosch.cliques;
  check Alcotest.int "size 1" 1 r.Bron_kerbosch.max_size

let bk_complete_graph () =
  let vm = mk_vm () in
  let n = 6 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  let g = graph_of_edges vm n !edges in
  let r = Bron_kerbosch.run g in
  check Alcotest.int "K6: one clique" 1 r.Bron_kerbosch.cliques;
  check Alcotest.int "of size 6" 6 r.Bron_kerbosch.max_size

let bk_expansion_cap () =
  let vm = mk_vm () in
  let rng = Rng.create 13 in
  let g =
    Generator.build vm ~rng ~model:Generator.Uniform ~nodes:60 ~edges:400
  in
  let r = Bron_kerbosch.run ~max_expansions:50 g in
  check Alcotest.bool "cap respected" true (r.Bron_kerbosch.expansions <= 50)

let bk_gc_safe () =
  (* Enumeration result must be identical under an aggressive HCSGC config
     (relocation must never corrupt adjacency). *)
  let run config =
    let vm = mk_vm ~config () in
    let rng = Rng.create 21 in
    let g =
      Generator.build vm ~rng ~model:Generator.Uniform ~nodes:40 ~edges:150
    in
    let r = Bron_kerbosch.run ~garbage_every:1 g in
    (r.Bron_kerbosch.cliques, r.Bron_kerbosch.max_size)
  in
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "same cliques under cfg 18 as ZGC" (run Config.zgc)
    (run (Config.of_id 18))

let suite =
  [
    ( "graph.mgraph",
      [
        case "basic edges" `Quick mgraph_basic;
        case "node identity" `Quick mgraph_node_identity;
        case "multi-cell adjacency" `Quick mgraph_many_neighbors;
        case "survives GC (cfg 18)" `Slow mgraph_survives_gc;
      ] );
    ( "graph.generator",
      [
        case "edge counts/ranges" `Quick generator_counts;
        case "deterministic" `Quick generator_deterministic;
        case "power-law skew" `Quick generator_power_law_skew;
        case "build on heap" `Quick generator_build;
        case "web model has communities" `Quick web_model_has_communities;
        case "web model has big cliques" `Quick web_model_finds_big_cliques;
      ] );
    ( "graph.dataset",
      [
        case "Table 3 values" `Quick dataset_table3;
        case "scaling" `Quick dataset_scaling;
      ] );
    ( "graph.connectivity",
      [
        case "known components" `Quick cc_known_graph;
        case "single component" `Quick cc_single_component;
        case "articulation points" `Quick articulation_points_known;
        case "bridge chain" `Quick articulation_bridge_chain;
        QCheck_alcotest.to_alcotest prop_cc_matches_reference;
      ] );
    ( "graph.bron_kerbosch",
      [
        case "triangle" `Quick bk_triangle;
        case "two triangles" `Quick bk_two_triangles_sharing_edge;
        case "independent set" `Quick bk_independent_set;
        case "complete graph" `Quick bk_complete_graph;
        case "expansion cap" `Quick bk_expansion_cap;
        case "GC-safe enumeration" `Slow bk_gc_safe;
      ] );
  ]
